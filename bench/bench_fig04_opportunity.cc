/**
 * @file
 * Figure 4 reproduction: the MPKI opportunity an ideal local predictor
 * has on top of TAGE, per workload category, and the fraction of that
 * opportunity that survives when the local predictor's BHT state is
 * never repaired.
 *
 * The "highly accurate local branch predictor with no misprediction" of
 * the paper is realized as an analysis oracle: the workload generator
 * owns every branch's behaviour, so TAGE mispredictions on branches
 * whose behaviour is a deterministic function of their own history
 * (loop/forward exits and repeating patterns) are exactly the
 * mispredictions an ideal local predictor would remove. The no-repair
 * bar comes from the full pipeline simulation.
 *
 * Also prints the Table 1 workload census.
 */

#include <map>

#include "bench/bench_common.hh"
#include "bpu/tage.hh"
#include "common/stats.hh"
#include "workload/executor.hh"

using namespace lbp;
using namespace lbp::bench;

namespace {

struct Opportunity
{
    std::uint64_t instrs = 0;
    std::uint64_t tageMisp = 0;
    std::uint64_t localMisp = 0;  ///< on locally-predictable branches
};

/** Functional TAGE pass classifying mispredictions by behaviour kind. */
Opportunity
measureOpportunity(const Program &prog, std::uint64_t instrs)
{
    std::map<Addr, bool> locally_predictable;
    for (const auto &br : prog.branches) {
        const BranchBehavior *b = br.behavior.get();
        locally_predictable[br.pc] =
            dynamic_cast<const LoopExitBehavior *>(b) != nullptr ||
            dynamic_cast<const PatternBehavior *>(b) != nullptr;
    }

    Executor exec(prog);
    TagePredictor tage;
    Opportunity opp;
    while (exec.instCount() < instrs) {
        const DynInstDesc &d = exec.next();
        if (d.cls == InstClass::Jump) {
            tage.specUpdateHist(d.pc, true);
            continue;
        }
        if (d.cls != InstClass::CondBranch)
            continue;
        TagePredStorage p;
        const bool pred = tage.predict(d.pc, p);
        tage.specUpdateHist(d.pc, d.taken);
        tage.train(d.pc, d.taken, p);
        if (pred != d.taken) {
            ++opp.tageMisp;
            if (locally_predictable[d.pc])
                ++opp.localMisp;
        }
    }
    opp.instrs = exec.instCount();
    return opp;
}

} // namespace

int
main()
{
    Context ctx = Context::make(
        "Figure 4: MPKI opportunity of an ideal local predictor, and "
        "what no-repair retains");

    // Table 1 census.
    {
        std::map<std::string, std::pair<unsigned, BranchCensus>> census;
        for (const Program &p : ctx.suite) {
            auto &[count, agg] = census[p.category];
            ++count;
            const BranchCensus c = p.census();
            agg.loops += c.loops;
            agg.forwardExits += c.forwardExits;
            agg.patterns += c.patterns;
            agg.correlated += c.correlated;
            agg.random += c.random;
        }
        TextTable t({"Category (Table 1)", "Workloads", "loops",
                     "fwd-exits", "patterns", "correlated", "random"});
        for (const auto &[cat, entry] : census) {
            const auto &[count, c] = entry;
            t.addRow({cat, std::to_string(count),
                      std::to_string(c.loops),
                      std::to_string(c.forwardExits),
                      std::to_string(c.patterns),
                      std::to_string(c.correlated),
                      std::to_string(c.random)});
        }
        std::printf("%s\n", t.render().c_str());
    }

    // No-repair pipeline run.
    const SuiteResult &no_repair =
        ctx.run(ctx.withScheme(RepairKind::NoRepair));

    struct Acc
    {
        Opportunity opp;
        std::uint64_t baseMisp = 0, baseInstr = 0;
        std::uint64_t nrMisp = 0, nrInstr = 0;
    };
    std::map<std::string, Acc> by_cat;
    for (std::size_t i = 0; i < ctx.suite.size(); ++i) {
        Acc &a = by_cat[ctx.suite[i].category];
        const Opportunity o = measureOpportunity(
            ctx.suite[i],
            ctx.env.warmupInstrs + ctx.env.measureInstrs);
        a.opp.instrs += o.instrs;
        a.opp.tageMisp += o.tageMisp;
        a.opp.localMisp += o.localMisp;
        a.baseMisp += ctx.baseline.runs[i].stats.mispredicts;
        a.baseInstr += ctx.baseline.runs[i].stats.retiredInstrs;
        a.nrMisp += no_repair.runs[i].stats.mispredicts;
        a.nrInstr += no_repair.runs[i].stats.retiredInstrs;
    }

    TextTable t({"Category", "ideal-local MPKI redn",
                 "no-repair MPKI redn", "opportunity retained"});
    Acc all;
    for (const auto &[cat, a] : by_cat) {
        all.opp.tageMisp += a.opp.tageMisp;
        all.opp.localMisp += a.opp.localMisp;
        all.baseMisp += a.baseMisp;
        all.baseInstr += a.baseInstr;
        all.nrMisp += a.nrMisp;
        all.nrInstr += a.nrInstr;
    }
    const auto row = [&](const std::string &name, const Acc &a) {
        const double ideal =
            a.opp.tageMisp
                ? 100.0 * a.opp.localMisp / a.opp.tageMisp
                : 0.0;
        const double base_mpki =
            a.baseInstr ? 1000.0 * a.baseMisp / a.baseInstr : 0.0;
        const double nr_mpki =
            a.nrInstr ? 1000.0 * a.nrMisp / a.nrInstr : 0.0;
        const double nr_redn =
            base_mpki > 0.0 ? 100.0 * (base_mpki - nr_mpki) / base_mpki
                            : 0.0;
        t.addRow({name, fmtPercent(ideal / 100.0, 1),
                  fmtPercent(nr_redn / 100.0, 1),
                  fmtPercent(ideal > 0.0 ? nr_redn / ideal : 0.0, 1)});
    };
    for (const auto &[cat, a] : by_cat)
        row(cat, a);
    row("All", all);
    std::printf("%s\n", t.render().c_str());
    std::printf("paper: ~44%% MPKI reduction opportunity across "
                "workloads; with no repair almost all of it is lost, "
                "and MM/BP actually lose performance.\n");
    return reportThroughput("bench_fig04_opportunity");
}
