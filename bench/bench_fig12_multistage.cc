/**
 * @file
 * Figure 12 reproduction: multi-stage prediction with split BHT
 * (BHT-TAGE at fetch + BHT-Defer at the allocation-queue entry), with
 * shared and split PT, compared against forward-walk on the full
 * 128-entry table.
 */

#include "bench/bench_common.hh"
#include "common/stats.hh"

using namespace lbp;
using namespace lbp::bench;

int
main()
{
    Context ctx =
        Context::make("Figure 12: multi-stage prediction, split BHT");

    const SuiteResult &perfect = ctx.perfect();
    const double perfect_ipc = ipcGainPct(ctx.baseline, perfect);

    TextTable t({"design", "MPKI redn", "IPC gain", "% of perfect",
                 "early resteers/Kmisp"});

    const auto addRow = [&](const char *name, const SimConfig &cfg) {
        const SuiteResult &res = ctx.run(cfg);
        const double ipc = ipcGainPct(ctx.baseline, res);
        std::uint64_t resteers = 0, misp = 0;
        for (const RunResult &r : res.runs) {
            resteers += r.earlyResteers;
            misp += r.stats.mispredicts;
        }
        t.addRow({name,
                  fmtPercent(mpkiReductionPct(ctx.baseline, res) / 100.0,
                             1),
                  fmtPercent(ipc / 100.0, 2),
                  fmtPercent(retainedPct(ipc, perfect_ipc) / 100.0, 0),
                  fmtDouble(misp ? 1000.0 * resteers / misp : 0.0, 0)});
    };

    {
        SimConfig cfg = ctx.withScheme(RepairKind::ForwardWalk);
        cfg.repair.ports = {32, 4, 2};
        addRow("forward-walk (128-entry BHT)", cfg);
    }
    {
        SimConfig cfg = ctx.withScheme(RepairKind::MultiStage);
        cfg.repair.ports = {32, 4, 4};
        cfg.repair.msSplitPt = false;
        addRow("split BHT 64+64, shared PT", cfg);
    }
    {
        SimConfig cfg = ctx.withScheme(RepairKind::MultiStage);
        cfg.repair.ports = {32, 4, 4};
        cfg.repair.msSplitPt = true;
        addRow("split BHT 64+64, split PT", cfg);
    }

    std::printf("%s\n", t.render().c_str());
    std::printf("paper: the split-BHT designs trail forward-walk "
                "(re-steer delay + 64-entry tables) but need no extra "
                "BHT ports for repair; shared vs split PT is a minor "
                "difference.\n");
    return reportThroughput("bench_fig12_multistage");
}
