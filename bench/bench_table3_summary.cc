/**
 * @file
 * Table 3 reproduction: the summary comparison of every repair
 * technique — MPKI reduction, IPC gain, percent of perfect-repair gains
 * retained, and storage — over the full workload suite, all with
 * CBPw-Loop128 on top of the 7.1KB TAGE baseline.
 *
 * Paper reference points (Table 3): NoRepair 0%, Snapshot 30%,
 * RetireUpdate 41%, BackwardWalk 52%, 2PC 56%, SplitBHT 57%, 4PC 61%,
 * ForwardWalk 77%, ForwardWalk+coalescing 79%, Perfect 100%.
 */

#include "bench/bench_common.hh"
#include "common/stats.hh"

using namespace lbp;
using namespace lbp::bench;

int
main()
{
    Context ctx = Context::make(
        "Table 3: summary of repair techniques (CBPw-Loop128)");

    struct Row
    {
        std::string name;
        SimConfig cfg;
    };
    std::vector<Row> rows;

    {
        SimConfig c = ctx.withScheme(RepairKind::Perfect);
        rows.push_back({"Perfect Repair", c});
    }
    {
        SimConfig c = ctx.withScheme(RepairKind::NoRepair);
        rows.push_back({"No Repair", c});
    }
    {
        SimConfig c = ctx.withScheme(RepairKind::Snapshot);
        c.repair.ports = {32, 8, 8};
        rows.push_back({"Snapshot (32-8-8)", c});
    }
    {
        SimConfig c = ctx.withScheme(RepairKind::RetireUpdate);
        rows.push_back({"Update BHT at Retire", c});
    }
    {
        SimConfig c = ctx.withScheme(RepairKind::BackwardWalk);
        c.repair.ports = {32, 4, 4};
        rows.push_back({"Backward-walk (32-4-4)", c});
    }
    {
        SimConfig c = ctx.withScheme(RepairKind::LimitedPc);
        c.repair.limitedM = 2;
        c.repair.ports.bhtWritePorts = 2;
        rows.push_back({"2PC limited repair", c});
    }
    {
        SimConfig c = ctx.withScheme(RepairKind::MultiStage);
        c.repair.ports = {32, 4, 4};
        rows.push_back({"Split BHT repair", c});
    }
    {
        SimConfig c = ctx.withScheme(RepairKind::LimitedPc);
        c.repair.limitedM = 4;
        c.repair.ports.bhtWritePorts = 4;
        rows.push_back({"4PC limited repair", c});
    }
    {
        SimConfig c = ctx.withScheme(RepairKind::ForwardWalk);
        c.repair.ports = {32, 4, 2};
        rows.push_back({"Forward-walk (32-4-2)", c});
    }
    {
        SimConfig c = ctx.withScheme(RepairKind::ForwardWalk);
        c.repair.ports = {32, 4, 2};
        c.repair.coalesce = true;
        rows.push_back({"Forward-walk + coalescing", c});
    }

    // Perfect first: everything is normalized against it.
    const SuiteResult &perfect = ctx.run(rows[0].cfg);
    const double perfect_ipc = ipcGainPct(ctx.baseline, perfect);
    const double perfect_mpki = mpkiReductionPct(ctx.baseline, perfect);

    TextTable table({"Configuration", "MPKI redn", "IPC gain",
                     "% of perfect", "Storage (KB)"});
    table.addRow({"Baseline TAGE", "0%", "0%", "0%",
                  fmtDouble(ctx.base.tage.storageKB(), 1)});

    for (std::size_t i = 1; i < rows.size(); ++i) {
        const SuiteResult &res = ctx.run(rows[i].cfg);
        const double mpki_redn = mpkiReductionPct(ctx.baseline, res);
        const double ipc_gain = ipcGainPct(ctx.baseline, res);
        const double storage = rows[i].cfg.tage.storageKB() +
                               res.runs.front().localKB +
                               res.runs.front().repairKB;
        table.addRow({rows[i].name, fmtPercent(mpki_redn / 100.0, 1),
                      fmtPercent(ipc_gain / 100.0, 2),
                      fmtPercent(retainedPct(ipc_gain, perfect_ipc) /
                                     100.0, 0),
                      fmtDouble(storage, 1)});
    }
    table.addRow({"Perfect Repair", fmtPercent(perfect_mpki / 100.0, 1),
                  fmtPercent(perfect_ipc / 100.0, 2), "100%", "NA"});

    std::printf("%s\n", table.render().c_str());
    std::printf("paper (Table 3): NoRepair 0%%, Snapshot 30%%, Retire "
                "41%%, Backward 52%%, 2PC 56%%, SplitBHT 57%%, 4PC "
                "61%%, Fwd 77%%, Fwd+coal 79%%, Perfect 100%%\n");
    return reportThroughput("bench_table3_summary");
}
