/**
 * @file
 * Figure 11 reproduction: forward-walk history-file repair across OBQ
 * size / port configurations (M-N-X: M OBQ entries, N OBQ read ports,
 * X BHT write ports), plus the OBQ-coalescing variant of FWD-32-4-2.
 */

#include "bench/bench_common.hh"
#include "common/stats.hh"

using namespace lbp;
using namespace lbp::bench;

int
main()
{
    Context ctx = Context::make("Figure 11: forward-walk HF repair");

    const SuiteResult &perfect = ctx.perfect();
    const double perfect_ipc = ipcGainPct(ctx.baseline, perfect);
    std::printf("perfect repair: %+0.2f%% IPC\n\n", perfect_ipc);

    struct Cfg
    {
        RepairPorts ports;
        bool coalesce;
    };
    const Cfg configs[] = {
        {{64, 4, 4}, false}, {{64, 4, 2}, false}, {{32, 4, 4}, false},
        {{32, 4, 2}, false}, {{16, 4, 2}, false}, {{32, 4, 2}, true},
    };

    TextTable t({"config", "MPKI redn", "IPC gain", "% of perfect"});
    for (const Cfg &c : configs) {
        SimConfig cfg = ctx.withScheme(RepairKind::ForwardWalk);
        cfg.repair.ports = c.ports;
        cfg.repair.coalesce = c.coalesce;
        const SuiteResult &res = ctx.run(cfg);
        const double ipc = ipcGainPct(ctx.baseline, res);
        std::string name = "FWD-" + std::to_string(c.ports.entries) +
                           "-" + std::to_string(c.ports.readPorts) +
                           "-" +
                           std::to_string(c.ports.bhtWritePorts);
        if (c.coalesce)
            name += "+merge";
        t.addRow({name,
                  fmtPercent(mpkiReductionPct(ctx.baseline, res) / 100.0,
                             1),
                  fmtPercent(ipc / 100.0, 2),
                  fmtPercent(retainedPct(ipc, perfect_ipc) / 100.0, 0)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper: FWD-32-4-2 retains 76%% of perfect gains; "
                "coalescing adds ~3.5%%, reaching 79.5%%. Smaller OBQs "
                "and fewer ports give correspondingly less.\n");
    return reportThroughput("bench_fig11_forward");
}
