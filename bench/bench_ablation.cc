/**
 * @file
 * Ablation studies for the design choices DESIGN.md section 7 calls
 * out (not a paper figure): the exit-earned confidence policy, the
 * optional WITHLOOP chooser, the future-file organization the paper
 * rejects in section 2.6, and the multi-stage defer-stage depth.
 */

#include "bench/bench_common.hh"
#include "common/stats.hh"

using namespace lbp;
using namespace lbp::bench;

int
main()
{
    Context ctx = Context::make("Ablations (design-choice studies)");

    const SuiteResult &perfect = ctx.perfect();
    const double perfect_ipc = ipcGainPct(ctx.baseline, perfect);
    std::printf("perfect repair reference: %+0.2f%% IPC\n\n",
                perfect_ipc);

    const auto row = [&](TextTable &t, const std::string &name,
                         const SimConfig &cfg) {
        const SuiteResult &res = ctx.run(cfg);
        const double ipc = ipcGainPct(ctx.baseline, res);
        t.addRow({name,
                  fmtPercent(mpkiReductionPct(ctx.baseline, res) / 100.0,
                             1),
                  fmtPercent(ipc / 100.0, 2),
                  fmtPercent(retainedPct(ipc, perfect_ipc) / 100.0, 0)});
    };

    // ---- A. PT confidence threshold -----------------------------------
    {
        std::printf("--- A: PT confidence threshold (forward-walk vs "
                    "no-repair) ---\n");
        TextTable t({"config", "MPKI redn", "IPC gain", "% of perfect"});
        for (const unsigned thr : {1u, 3u, 5u, 7u}) {
            for (const RepairKind kind :
                 {RepairKind::ForwardWalk, RepairKind::NoRepair}) {
                SimConfig cfg = ctx.withScheme(kind);
                cfg.repair.ports = {32, 4, 2};
                cfg.repair.loop.ptConfThreshold = thr;
                row(t, std::string(repairKindName(kind)) + " thr=" +
                           std::to_string(thr),
                    cfg);
            }
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("higher thresholds silence desynchronized entries "
                    "harder: no-repair's losses shrink while good "
                    "repair gives a little coverage back.\n\n");
    }

    // ---- B. Confidence penalty ----------------------------------------
    {
        std::printf("--- B: confidence penalty on a wrong call ---\n");
        TextTable t({"config", "MPKI redn", "IPC gain", "% of perfect"});
        for (const unsigned pen : {1u, 2u, 7u}) {
            for (const RepairKind kind :
                 {RepairKind::ForwardWalk, RepairKind::NoRepair}) {
                SimConfig cfg = ctx.withScheme(kind);
                cfg.repair.ports = {32, 4, 2};
                cfg.repair.loop.ptConfPenalty = pen;
                row(t, std::string(repairKindName(kind)) + " pen=" +
                           std::to_string(pen),
                    cfg);
            }
        }
        std::printf("%s\n", t.render().c_str());
    }

    // ---- C. WITHLOOP chooser ------------------------------------------
    {
        std::printf("--- C: global WITHLOOP chooser (CBP-style) ---\n");
        TextTable t({"config", "MPKI redn", "IPC gain", "% of perfect"});
        for (const bool chooser : {false, true}) {
            for (const RepairKind kind :
                 {RepairKind::ForwardWalk, RepairKind::NoRepair}) {
                SimConfig cfg = ctx.withScheme(kind);
                cfg.repair.ports = {32, 4, 2};
                cfg.repair.useChooser = chooser;
                row(t, std::string(repairKindName(kind)) +
                           (chooser ? " +chooser" : " -chooser"),
                    cfg);
            }
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("a global trust counter mostly turns an unrepaired "
                    "predictor off; the paper's no-repair *losses* "
                    "imply their design lets wrong overrides through, "
                    "hence chooser-off is our default.\n\n");
    }

    // ---- D. Future file (section 2.6, rejected for power) -------------
    {
        std::printf("--- D: future-file organization vs search window "
                    "---\n");
        TextTable t({"config", "MPKI redn", "IPC gain", "% of perfect"});
        for (const unsigned w : {2u, 4u, 16u, 64u}) {
            SimConfig cfg = ctx.withScheme(RepairKind::FutureFile);
            cfg.repair.ports = {64, 4, 2};
            cfg.repair.ffWindow = w;
            row(t, "future-file W=" + std::to_string(w), cfg);
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("accuracy-wise the future file approaches perfect "
                    "repair as the associative window grows — the "
                    "paper rejects it because that window is an "
                    "associative search on the critical prediction "
                    "path (power/latency), not because of accuracy.\n\n");
    }

    // ---- E. Multi-stage defer depth ------------------------------------
    {
        std::printf("--- E: multi-stage defer-stage depth ---\n");
        TextTable t({"config", "MPKI redn", "IPC gain", "% of perfect"});
        for (const unsigned depth : {3u, 5u, 8u}) {
            SimConfig cfg = ctx.withScheme(RepairKind::MultiStage);
            cfg.repair.ports = {32, 4, 4};
            cfg.core.deferDepth = depth;
            row(t, "split-BHT defer@" + std::to_string(depth), cfg);
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("the earlier BHT-Defer sits, the cheaper its "
                    "re-steer; past the alloc-queue entry the design "
                    "stops paying for itself.\n");
    }
    return reportThroughput("bench_ablation");
}
