/**
 * @file
 * Figure 14 reproduction — sensitivity studies:
 *  (A) iso-storage: growing TAGE to ~9KB versus spending the same
 *      storage on CBPw-Loop128 plus forward-walk repair on top of the
 *      7.1KB TAGE;
 *  (B) a much larger 57KB TAGE (CBPw 64KB-category) with CBPw-Loop and
 *      the repair techniques on top.
 */

#include "bench/bench_common.hh"
#include "common/stats.hh"

using namespace lbp;
using namespace lbp::bench;

int
main()
{
    Context ctx = Context::make("Figure 14: sensitivity studies");

    // ---- (A) iso-storage --------------------------------------------
    std::printf("--- 14A: iso-storage comparison ---\n");
    TextTable ta({"configuration", "storage KB", "IPC gain vs TAGE7"});
    {
        SimConfig big = ctx.base;
        big.tage = TageConfig::kb9();
        const SuiteResult &res = ctx.run(big);
        ta.addRow({"TAGE scaled to ~9KB",
                   fmtDouble(big.tage.storageKB(), 1),
                   fmtPercent(ipcGainPct(ctx.baseline, res) / 100.0,
                              2)});
    }
    {
        SimConfig cfg = ctx.withScheme(RepairKind::ForwardWalk);
        cfg.repair.ports = {32, 4, 2};
        cfg.repair.coalesce = true;
        const SuiteResult &res = ctx.run(cfg);
        ta.addRow({"TAGE7.1 + Loop128 + fwd-walk",
                   fmtDouble(cfg.tage.storageKB() +
                                 res.runs.front().localKB +
                                 res.runs.front().repairKB, 1),
                   fmtPercent(ipcGainPct(ctx.baseline, res) / 100.0,
                              2)});
    }
    {
        const SuiteResult &res = ctx.perfect();
        ta.addRow({"TAGE7.1 + Loop128 (perfect rep.)", "NA",
                   fmtPercent(ipcGainPct(ctx.baseline, res) / 100.0,
                              2)});
    }
    std::printf("%s\n", ta.render().c_str());
    std::printf("paper: iso-storage TAGE(9KB) gains only ~1%%; "
                "TAGE+Loop+fwd-walk gives ~3x more.\n\n");

    // ---- (B) large 57KB TAGE ----------------------------------------
    std::printf("--- 14B: CBPw-Loop on a 57KB TAGE ---\n");
    SimConfig big_base = ctx.base;
    big_base.tage = TageConfig::kb57();
    const SuiteResult &base57 = ctx.run(big_base);
    std::printf("TAGE57 baseline vs TAGE7: %+0.2f%% IPC, %+0.1f%% MPKI "
                "redn\n",
                ipcGainPct(ctx.baseline, base57),
                mpkiReductionPct(ctx.baseline, base57));

    TextTable tb({"scheme on TAGE57", "MPKI redn", "IPC gain"});
    const struct
    {
        const char *name;
        RepairKind kind;
        RepairPorts ports;
        bool coalesce;
    } rows[] = {
        {"perfect", RepairKind::Perfect, {32, 4, 2}, false},
        {"forward-walk 32-4-2", RepairKind::ForwardWalk, {32, 4, 2},
         true},
        {"split BHT", RepairKind::MultiStage, {32, 4, 4}, false},
        {"4PC limited", RepairKind::LimitedPc, {32, 4, 4}, false},
    };
    for (const auto &row : rows) {
        SimConfig cfg = big_base;
        cfg.useLocal = true;
        cfg.repair.kind = row.kind;
        cfg.repair.ports = row.ports;
        cfg.repair.coalesce = row.coalesce;
        if (row.kind == RepairKind::LimitedPc)
            cfg.repair.limitedM = 4;
        const SuiteResult &res = ctx.run(cfg);
        tb.addRow({row.name,
                   fmtPercent(mpkiReductionPct(base57, res) / 100.0, 1),
                   fmtPercent(ipcGainPct(base57, res) / 100.0, 2)});
    }
    std::printf("%s\n", tb.render().c_str());
    std::printf("paper: even on a 57KB TAGE, CBPw-Loop with perfect "
                "repair improves IPC by 2.7%%, and each repair "
                "technique keeps most of its efficiency.\n");
    return reportThroughput("bench_fig14_sensitivity");
}
