/**
 * @file
 * Shared scaffolding for the figure/table benches: suite construction,
 * baseline/perfect caching, scheme config shortcuts, headers, and
 * throughput reporting.
 *
 * Suite executions go through the process-wide SuiteCache, so the
 * TAGE-only baseline and the perfect-repair reference — which nearly
 * every figure needs — are simulated exactly once per bench process no
 * matter how many tables ask for them, and repeated sweep
 * configurations cost one simulation each. Simulations fan out across
 * a ThreadPool (REPRO_JOBS workers, default = hardware concurrency)
 * with bit-identical results to a serial run.
 */

#ifndef LBP_BENCH_BENCH_COMMON_HH
#define LBP_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "sim/runner.hh"
#include "sim/suite_cache.hh"
#include "workload/suite.hh"

namespace lbp::bench {

/** Everything a figure bench needs to get going. */
struct Context
{
    BenchEnv env;
    std::vector<Program> suite;
    SimConfig base;  ///< TAGE-only baseline configuration

    SuiteResult baseline;  ///< TAGE-only results (computed in make())

    static Context
    make(const char *title)
    {
        Context ctx;
        ctx.env = BenchEnv::fromEnvironment();
        SuiteOptions opts;
        opts.maxWorkloads = ctx.env.maxWorkloads;
        ctx.suite = buildSuite(opts);
        ctx.env.apply(ctx.base);

        std::printf("=== %s ===\n", title);
        std::printf("suite: %zu workloads | %llu warm-up + %llu measured "
                    "instructions each\n",
                    ctx.suite.size(),
                    static_cast<unsigned long long>(ctx.env.warmupInstrs),
                    static_cast<unsigned long long>(
                        ctx.env.measureInstrs));
        std::printf("core: 4-wide OOO, 224 ROB, TAGE %.1fKB baseline "
                    "(Table 2)\n",
                    ctx.base.tage.storageKB());
        std::printf("jobs: %u worker(s) (REPRO_JOBS; default = hardware "
                    "concurrency)\n\n",
                    resolveJobs(ctx.env.jobs));

        ctx.baseline = ctx.run(ctx.base);
        return ctx;
    }

    /** Config with CBPw-Loop128 and the given repair scheme. */
    SimConfig
    withScheme(RepairKind kind) const
    {
        SimConfig cfg = base;
        cfg.useLocal = true;
        cfg.repair.kind = kind;
        return cfg;
    }

    /**
     * Simulate the suite under @p cfg through the process-wide
     * memoization cache; repeated configurations are free. The
     * reference stays valid for the bench's lifetime.
     */
    const SuiteResult &
    run(const SimConfig &cfg) const
    {
        return runSuiteCached(suite, cfg, env.jobs);
    }

    /**
     * The perfect-repair reference suite. Cached like every run();
     * kept as a named helper because almost every figure normalizes
     * against it.
     */
    const SuiteResult &
    perfect() const
    {
        return run(withScheme(RepairKind::Perfect));
    }
};

/** Percent of perfect-repair IPC gains a scheme retains. */
inline double
retainedPct(double scheme_gain, double perfect_gain)
{
    return perfect_gain > 0.0 ? 100.0 * scheme_gain / perfect_gain : 0.0;
}

/**
 * Print the throughput telemetry accumulated by every runSuite() call
 * and dump it as machine-readable JSON (REPRO_THROUGHPUT_JSON, default
 * BENCH_throughput.json). Returns 0 so benches can end with
 * `return reportThroughput("bench_...");`.
 */
inline int
reportThroughput(const char *bench)
{
    std::printf("\n");
    TelemetryRegistry::process().printSummary(stdout);
    const SuiteCache::CacheStats cs = SuiteCache::process().stats();
    std::printf("  suite cache: %llu simulated, %llu memoized\n",
                static_cast<unsigned long long>(cs.misses),
                static_cast<unsigned long long>(cs.hits));
    const std::string path = throughputJsonPath();
    if (TelemetryRegistry::process().writeJson(path, bench))
        std::printf("  wrote %s\n", path.c_str());
    return 0;
}

} // namespace lbp::bench

#endif // LBP_BENCH_BENCH_COMMON_HH
