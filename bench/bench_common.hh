/**
 * @file
 * Shared scaffolding for the figure/table benches: suite construction,
 * baseline/perfect caching, scheme config shortcuts, and headers.
 */

#ifndef LBP_BENCH_BENCH_COMMON_HH
#define LBP_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "workload/suite.hh"

namespace lbp::bench {

/** Everything a figure bench needs to get going. */
struct Context
{
    BenchEnv env;
    std::vector<Program> suite;
    SimConfig base;  ///< TAGE-only baseline configuration

    SuiteResult baseline;  ///< TAGE-only results (computed in make())

    static Context
    make(const char *title)
    {
        Context ctx;
        ctx.env = BenchEnv::fromEnvironment();
        SuiteOptions opts;
        opts.maxWorkloads = ctx.env.maxWorkloads;
        ctx.suite = buildSuite(opts);
        ctx.env.apply(ctx.base);

        std::printf("=== %s ===\n", title);
        std::printf("suite: %zu workloads | %llu warm-up + %llu measured "
                    "instructions each\n",
                    ctx.suite.size(),
                    static_cast<unsigned long long>(ctx.env.warmupInstrs),
                    static_cast<unsigned long long>(
                        ctx.env.measureInstrs));
        std::printf("core: 4-wide OOO, 224 ROB, TAGE %.1fKB baseline "
                    "(Table 2)\n\n",
                    ctx.base.tage.storageKB());

        ctx.baseline = runSuite(ctx.suite, ctx.base);
        return ctx;
    }

    /** Config with CBPw-Loop128 and the given repair scheme. */
    SimConfig
    withScheme(RepairKind kind) const
    {
        SimConfig cfg = base;
        cfg.useLocal = true;
        cfg.repair.kind = kind;
        return cfg;
    }
};

/** Percent of perfect-repair IPC gains a scheme retains. */
inline double
retainedPct(double scheme_gain, double perfect_gain)
{
    return perfect_gain > 0.0 ? 100.0 * scheme_gain / perfect_gain : 0.0;
}

} // namespace lbp::bench

#endif // LBP_BENCH_BENCH_COMMON_HH
